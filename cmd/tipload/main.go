// Command tipload is the fleet load harness: it drives a tipd coordinator
// (or a single tipd) with many concurrent clients submitting a mixed
// warm/cold job universe, honors jittered 429 backpressure with capped
// exponential backoff, and reports latency percentiles, cache/store hit
// rates, steal rate, and per-node job counts as schema-versioned JSON.
//
// Point it at a running fleet:
//
//	tipload -target http://localhost:7270 -clients 64 -jobs 512
//
// or let it spin up a loopback fleet in-process (coordinator + N workers
// sharing one capture store) and load that:
//
//	tipload -fleet 3 -clients 64 -jobs 512
//
// The gate fields CI consumes: .repeat_hit_rate (≥0.95 on a healthy
// fleet — repeated keys must be served by the capture cache or the shared
// store, not re-simulated) and .lost (must be 0 — every accepted job
// stays fetchable, including across a worker drain).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tipprof/tip/internal/fleet"
	"github.com/tipprof/tip/internal/server"
)

const schemaVersion = 1

type config struct {
	target     string
	clients    int
	jobs       int
	benches    []string
	seeds      int
	scale      uint64
	samples    int
	poll       time.Duration
	jobTimeout time.Duration
	maxBackoff time.Duration
}

// jobResult is one client-observed job outcome.
type jobResult struct {
	key       string
	repeatKey bool // the key had already completed fleet-wide at submit time
	latency   time.Duration
	state     string // done | failed | canceled | lost | rejected
	source    string // simulated | cache | store | sampled
	cacheHit  bool
	node      string
	stolen    bool
	retries   int
}

// latencySummary is percentile output in milliseconds.
type latencySummary struct {
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	Count int     `json:"count"`
}

// report is tipload's JSON output.
type report struct {
	SchemaVersion int    `json:"schema_version"`
	Target        string `json:"target"`
	Clients       int    `json:"clients"`
	Jobs          int    `json:"jobs"`
	UniverseKeys  int    `json:"universe_keys"`
	ElapsedMS     int64  `json:"elapsed_ms"`

	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Canceled  int `json:"canceled"`
	Lost      int `json:"lost"`
	Rejected  int `json:"rejected"`

	Retries429 uint64 `json:"retries_429"`

	Latency     latencySummary `json:"latency_ms"`
	WarmLatency latencySummary `json:"warm_latency_ms"`

	RepeatKeyJobs int     `json:"repeat_key_jobs"`
	RepeatKeyHits int     `json:"repeat_key_hits"`
	RepeatHitRate float64 `json:"repeat_hit_rate"`

	Sources    map[string]int `json:"sources"`
	StolenJobs int            `json:"stolen_jobs"`
	StealRate  float64        `json:"steal_rate"`
	PerNode    map[string]int `json:"per_node"`
}

func main() {
	var (
		target     = flag.String("target", "", "coordinator (or single tipd) base URL to load")
		fleetN     = flag.Int("fleet", 0, "spin up an in-process loopback fleet of N workers instead of -target")
		storeDir   = flag.String("store", "", "capture store dir for -fleet mode (default: a temp dir)")
		clients    = flag.Int("clients", 32, "concurrent clients")
		jobs       = flag.Int("jobs", 128, "total jobs to submit")
		benches    = flag.String("bench", "x264,mcf,imagick", "comma-separated benchmark universe")
		seeds      = flag.Int("seeds", 2, "seeds per benchmark (universe = benches × seeds)")
		scale      = flag.Uint64("scale", 200_000, "dynamic-instruction scale per job")
		samples    = flag.Int("samples", 256, "target samples per profile")
		poll       = flag.Duration("poll", 50*time.Millisecond, "job status poll interval")
		jobTimeout = flag.Duration("job-timeout", 2*time.Minute, "per-job client deadline (submit through terminal)")
		maxBackoff = flag.Duration("max-backoff", 5*time.Second, "cap on 429 exponential backoff")
		out        = flag.String("o", "-", "write the JSON report here (- = stdout)")
	)
	flag.Parse()

	cfg := config{
		target:     strings.TrimRight(*target, "/"),
		clients:    *clients,
		jobs:       *jobs,
		benches:    strings.Split(*benches, ","),
		seeds:      *seeds,
		scale:      *scale,
		samples:    *samples,
		poll:       *poll,
		jobTimeout: *jobTimeout,
		maxBackoff: *maxBackoff,
	}

	if *fleetN > 0 {
		dir := *storeDir
		if dir == "" {
			var err error
			if dir, err = os.MkdirTemp("", "tipload-store-"); err != nil {
				fmt.Fprintln(os.Stderr, "tipload:", err)
				os.Exit(1)
			}
			defer os.RemoveAll(dir)
		}
		url, shutdown, err := spawnFleet(*fleetN, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tipload:", err)
			os.Exit(1)
		}
		defer shutdown()
		cfg.target = url
		fmt.Fprintf(os.Stderr, "tipload: loopback fleet of %d workers at %s (store %s)\n", *fleetN, url, dir)
	}
	if cfg.target == "" {
		fmt.Fprintln(os.Stderr, "tipload: need -target or -fleet")
		os.Exit(1)
	}

	rep, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tipload:", err)
		os.Exit(1)
	}
	data, _ := json.MarshalIndent(rep, "", "  ")
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tipload:", err)
		os.Exit(1)
	}
	if rep.Lost > 0 || rep.Failed > 0 {
		os.Exit(2)
	}
}

// runLoad drives the configured universe with cfg.clients workers and
// aggregates the report.
func runLoad(cfg config) (*report, error) {
	universe := buildUniverse(cfg)
	if len(universe) == 0 {
		return nil, fmt.Errorf("empty job universe")
	}

	ld := &loader{
		cfg:       cfg,
		client:    &http.Client{Timeout: 30 * time.Second},
		completed: map[string]bool{},
	}
	results := make([]jobResult, cfg.jobs)
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.jobs {
					return
				}
				results[i] = ld.runOne(universe[i%len(universe)])
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &report{
		SchemaVersion: schemaVersion,
		Target:        cfg.target,
		Clients:       cfg.clients,
		Jobs:          cfg.jobs,
		UniverseKeys:  len(universe),
		ElapsedMS:     elapsed.Milliseconds(),
		Retries429:    ld.retries429.Load(),
		Sources:       map[string]int{},
		PerNode:       map[string]int{},
	}
	var all, warm []time.Duration
	for _, r := range results {
		switch r.state {
		case "done":
			rep.Completed++
			all = append(all, r.latency)
			if r.source != "" {
				rep.Sources[r.source]++
			}
			hit := r.cacheHit || r.source == "cache" || r.source == "store"
			if hit {
				warm = append(warm, r.latency)
			}
			if r.repeatKey {
				rep.RepeatKeyJobs++
				if hit {
					rep.RepeatKeyHits++
				}
			}
			if r.stolen {
				rep.StolenJobs++
			}
			node := r.node
			if node == "" {
				node = "local"
			}
			rep.PerNode[node]++
		case "failed":
			rep.Failed++
		case "canceled":
			rep.Canceled++
		case "lost":
			rep.Lost++
		default:
			rep.Rejected++
		}
	}
	rep.Latency = summarize(all)
	rep.WarmLatency = summarize(warm)
	if rep.RepeatKeyJobs > 0 {
		rep.RepeatHitRate = float64(rep.RepeatKeyHits) / float64(rep.RepeatKeyJobs)
	}
	if rep.Completed > 0 {
		rep.StealRate = float64(rep.StolenJobs) / float64(rep.Completed)
	}
	return rep, nil
}

// jobSpec is the submitted body; key doubles as the repeat-tracking id.
type jobSpec struct {
	body []byte
	key  string
}

func buildUniverse(cfg config) []jobSpec {
	var out []jobSpec
	for _, b := range cfg.benches {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		for s := 1; s <= cfg.seeds; s++ {
			body, _ := json.Marshal(map[string]any{
				"bench": b, "seed": s, "scale": cfg.scale,
				"profilers": []string{"TIP"}, "target_samples": cfg.samples,
			})
			out = append(out, jobSpec{body: body, key: fmt.Sprintf("%s:%d:%d", b, s, cfg.scale)})
		}
	}
	return out
}

// loader is the shared client state.
type loader struct {
	cfg        config
	client     *http.Client
	retries429 atomic.Uint64

	mu        sync.Mutex
	completed map[string]bool // keys with at least one completed job
}

func (ld *loader) keyCompleted(key string) bool {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	return ld.completed[key]
}

func (ld *loader) markCompleted(key string) {
	ld.mu.Lock()
	ld.completed[key] = true
	ld.mu.Unlock()
}

// jobView is the subset of the tipd/coordinator job view tipload reads.
type jobView struct {
	ID            string `json:"id"`
	State         string `json:"state"`
	Error         string `json:"error"`
	CacheHit      bool   `json:"cache_hit"`
	CaptureSource string `json:"capture_source"`
	Node          string `json:"node"`
	Stolen        bool   `json:"stolen"`
	RetryAfterMS  int    `json:"retry_after_ms"`
}

// runOne submits one job with 429 backoff and polls it to a terminal state.
func (ld *loader) runOne(spec jobSpec) jobResult {
	res := jobResult{key: spec.key, repeatKey: ld.keyCompleted(spec.key)}
	deadline := time.Now().Add(ld.cfg.jobTimeout)
	start := time.Now()

	v, ok := ld.submit(spec, deadline, &res)
	if !ok {
		return res
	}
	res.node, res.stolen = v.Node, v.Stolen

	for time.Now().Before(deadline) {
		time.Sleep(ld.cfg.poll)
		cur, status, err := ld.get(v.ID)
		if err != nil {
			continue // transient; the deadline bounds us
		}
		if status == http.StatusNotFound {
			// Accepted earlier but gone now: the fleet lost it.
			res.state = "lost"
			return res
		}
		switch cur.State {
		case "done", "failed", "canceled":
			res.state = cur.State
			res.latency = time.Since(start)
			res.cacheHit = cur.CacheHit
			res.source = cur.CaptureSource
			if cur.Node != "" {
				res.node = cur.Node
			}
			if cur.State == "done" {
				ld.markCompleted(spec.key)
			}
			return res
		}
	}
	res.state = "lost" // accepted but never reached a terminal state in time
	return res
}

// submit POSTs the spec, honoring 429 retry_after_ms with capped
// exponential backoff (the hint is already jittered server-side; doubling
// it per consecutive rejection keeps a saturated fleet from being hammered).
func (ld *loader) submit(spec jobSpec, deadline time.Time, res *jobResult) (jobView, bool) {
	backoffMult := 1
	for time.Now().Before(deadline) {
		resp, err := ld.client.Post(ld.cfg.target+"/v1/jobs", "application/json", bytes.NewReader(spec.body))
		if err != nil {
			res.retries++
			time.Sleep(250 * time.Millisecond)
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		var v jobView
		json.Unmarshal(body, &v)
		switch resp.StatusCode {
		case http.StatusAccepted:
			return v, true
		case http.StatusTooManyRequests:
			ld.retries429.Add(1)
			res.retries++
			ra := v.RetryAfterMS
			if ra <= 0 {
				ra = 750
			}
			sleep := time.Duration(ra) * time.Millisecond * time.Duration(backoffMult)
			if sleep > ld.cfg.maxBackoff {
				sleep = ld.cfg.maxBackoff
			} else {
				backoffMult *= 2
			}
			time.Sleep(sleep)
		case http.StatusServiceUnavailable:
			res.retries++
			time.Sleep(500 * time.Millisecond)
		default:
			res.state = "rejected"
			return jobView{}, false
		}
	}
	res.state = "rejected"
	return jobView{}, false
}

func (ld *loader) get(id string) (jobView, int, error) {
	resp, err := ld.client.Get(ld.cfg.target + "/v1/jobs/" + id)
	if err != nil {
		return jobView{}, 0, err
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil && resp.StatusCode == http.StatusOK {
		return jobView{}, 0, err
	}
	return v, resp.StatusCode, nil
}

func summarize(ds []time.Duration) latencySummary {
	if len(ds) == 0 {
		return latencySummary{}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	pct := func(q float64) float64 {
		return float64(ds[int(q*float64(len(ds)-1))].Microseconds()) / 1000
	}
	return latencySummary{
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
		Max:   float64(ds[len(ds)-1].Microseconds()) / 1000,
		Count: len(ds),
	}
}

// spawnFleet starts a coordinator plus n workers on loopback listeners, all
// sharing one capture store, and returns the coordinator URL.
func spawnFleet(n int, storeDir string) (string, func(), error) {
	var closers []func()
	shutdown := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}

	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{})
	coordURL, stop, err := serveLoopback(coord.Handler())
	if err != nil {
		return "", nil, err
	}
	closers = append(closers, stop)

	beatCtx, stopBeats := context.WithCancel(context.Background())
	closers = append(closers, stopBeats)
	for i := 0; i < n; i++ {
		st, err := fleet.OpenStore(storeDir)
		if err != nil {
			shutdown()
			return "", nil, err
		}
		s, err := server.New(server.Config{Workers: 2, QueueDepth: 8, Store: st})
		if err != nil {
			shutdown()
			return "", nil, err
		}
		url, stop, err := serveLoopback(s.Handler())
		if err != nil {
			shutdown()
			return "", nil, err
		}
		srv := s
		closers = append(closers, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			stop()
		})
		m := &fleet.Member{
			Coordinator: coordURL,
			Name:        fmt.Sprintf("w%d", i),
			URL:         url,
			Interval:    200 * time.Millisecond,
			Snapshot: func() fleet.NodeHealth {
				h := srv.Health()
				return fleet.NodeHealth{
					CoreHash: h.CoreHash, Draining: h.Draining,
					QueueDepth: h.QueueDepth, QueueCap: h.QueueCap,
					Running: h.Running, Workers: h.Workers,
					CacheEntries: h.CacheEntries, CacheBytes: h.CacheBytes,
				}
			},
		}
		go m.Run(beatCtx)
	}

	// Wait for every worker to land on the ring before loading.
	client := &http.Client{Timeout: 2 * time.Second}
	for i := 0; i < 100; i++ {
		resp, err := client.Get(coordURL + "/healthz")
		if err == nil {
			var h struct {
				RingNodes int `json:"ring_nodes"`
			}
			json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if h.RingNodes >= n {
				return coordURL, shutdown, nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	shutdown()
	return "", nil, fmt.Errorf("fleet never converged to %d ring nodes", n)
}

func serveLoopback(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}
