package main

import (
	"strings"
	"testing"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/experiments"
)

// TestConfigureSampledRejections exercises every sampled-mode flag rejection
// and the accepted shapes (defaults filled, explicit geometry preserved).
func TestConfigureSampledRejections(t *testing.T) {
	cases := []struct {
		name             string
		sampled          bool
		window, interval uint64
		warmup           string
		workers          int
		recording        bool
		wantErr          string
	}{
		{name: "window without sampled", window: 4096, wantErr: "-window requires -sampled"},
		{name: "interval without sampled", interval: 65536, wantErr: "-interval requires -sampled"},
		{name: "warmup without sampled", warmup: "1024", wantErr: "-warmup requires -sampled"},
		{name: "workers without sampled", workers: 4, wantErr: "-windowworkers requires -sampled"},
		{name: "sampled with record", sampled: true, recording: true, wantErr: "-record is incompatible with -sampled"},
		{name: "window exceeds interval", sampled: true, window: 1 << 20, interval: 4096, wantErr: "exceeds WindowInterval"},
		{name: "warmup overflows gap", sampled: true, window: 4096, interval: 8192, warmup: "8192", wantErr: "exceed WindowInterval"},
		{name: "warmup not a number", sampled: true, warmup: "lots", wantErr: "cycle count or \"auto\""},
		{name: "negative workers", sampled: true, workers: -1, wantErr: "-windowworkers must be >= 0"},
		{name: "plain run", wantErr: ""},
		{name: "sampled defaults", sampled: true, wantErr: ""},
		{name: "sampled auto warmup", sampled: true, warmup: "auto", wantErr: ""},
		{name: "sampled parallel", sampled: true, workers: 4, wantErr: ""},
		{name: "sampled explicit", sampled: true, window: 2048, interval: 16384, warmup: "1024", workers: 2, wantErr: ""},
	}
	for _, tc := range cases {
		rc := tip.DefaultRunConfig()
		err := configureSampled(&rc, tc.sampled, tc.window, tc.interval, tc.warmup, tc.workers, tc.recording)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestConfigureSampledDefaults pins the zero-value geometry to the
// evaluation-harness defaults, and that explicit values pass through.
func TestConfigureSampledDefaults(t *testing.T) {
	rc := tip.DefaultRunConfig()
	if err := configureSampled(&rc, true, 0, 0, "", 0, false); err != nil {
		t.Fatal(err)
	}
	if !rc.Sampled {
		t.Fatal("rc.Sampled not set")
	}
	if rc.WindowCycles != experiments.DefaultSampledWindow ||
		rc.WindowInterval != experiments.DefaultSampledInterval ||
		rc.WarmupCycles != experiments.DefaultSampledWarmup {
		t.Fatalf("defaults not applied: %d/%d/%d", rc.WindowCycles, rc.WindowInterval, rc.WarmupCycles)
	}

	rc = tip.DefaultRunConfig()
	if err := configureSampled(&rc, true, 4096, 4096, "", 0, false); err != nil {
		t.Fatal(err)
	}
	if rc.WarmupCycles != 0 {
		t.Fatalf("full-fraction run got a defaulted warmup %d", rc.WarmupCycles)
	}
}

// TestConfigureSampledAutoWarmup pins the -warmup auto resolution: the
// heuristic value is filled in and WarmupAuto recorded.
func TestConfigureSampledAutoWarmup(t *testing.T) {
	rc := tip.DefaultRunConfig()
	if err := configureSampled(&rc, true, 8192, 1<<20, "auto", 0, false); err != nil {
		t.Fatal(err)
	}
	if !rc.WarmupAuto {
		t.Fatal("WarmupAuto not recorded")
	}
	if want := tip.AutoWarmupCycles(8192, 1<<20); rc.WarmupCycles != want {
		t.Fatalf("auto warmup resolved to %d, want %d", rc.WarmupCycles, want)
	}
}

// TestRunMulticoreRejections exercises the -cores mode rejections: raw-sample
// recording, fused streaming, and sampled simulation are all single-core
// paths.
func TestRunMulticoreRejections(t *testing.T) {
	rc := tip.DefaultRunConfig()
	cases := []struct {
		name                          string
		recording, streaming, sampled bool
		wantErr                       string
	}{
		{name: "record", recording: true, wantErr: "-record is incompatible with -cores"},
		{name: "streaming", streaming: true, wantErr: "-streaming is incompatible with -cores"},
		{name: "sampled", sampled: true, wantErr: "-sampled is incompatible with -cores"},
		{name: "unknown bench", wantErr: "unknown benchmark"},
	}
	for _, tc := range cases {
		err := runMulticore("mcf,nosuchbench", 1, 10_000, rc, 5, "", tc.recording, tc.streaming, tc.sampled)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}
