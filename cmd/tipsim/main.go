// Command tipsim runs one benchmark on the simulated BOOM-style core with
// any set of profilers and prints the resulting profiles, cycle stack, and
// profile errors against the Oracle reference.
//
// Examples:
//
//	tipsim -bench imagick -top 8
//	tipsim -bench imagick -fn ceil
//	tipsim -bench gcc -profilers NCI,TIP -samples 8192
//	tipsim -cores mcf,x264
//	tipsim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strconv"
	"strings"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/experiments"
	"github.com/tipprof/tip/internal/perfdata"
	"github.com/tipprof/tip/internal/sampling"
	"github.com/tipprof/tip/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "imagick", "benchmark name (see -list)")
		cores     = flag.String("cores", "", "comma-separated benchmarks run lockstep on one shared-LLC system, workload i on core i, profiled per core through the core-tagged capture (incompatible with -record/-streaming/-sampled)")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		profilers = flag.String("profilers", "", "comma-separated profiler subset (default: all)")
		samples   = flag.Uint64("samples", 4096, "calibrated sample count (4 kHz-equivalent)")
		random    = flag.Bool("random", false, "random sampling within each interval")
		seed      = flag.Uint64("seed", 1, "workload seed")
		scale     = flag.Uint64("scale", 0, "approximate dynamic instruction budget (0 = default)")
		top       = flag.Int("top", 10, "functions to print")
		fn        = flag.String("fn", "", "print the instruction-level profile of this function")
		record    = flag.String("record", "", "record raw TIP samples (88 B/sample) to this file; post-process with tipreport")
		streaming = flag.Bool("streaming", false, "stream the simulation straight into the replay shards (fused capture+replay; interval calibrated from a pilot window)")
		pilot     = flag.Uint64("pilot", 0, "streaming pilot-window length in cycles (0 = default 131072)")
		sampled   = flag.Bool("sampled", false, "sampled simulation: detailed measurement windows alternating with functional fast-forward (see -window/-interval/-warmup)")
		window    = flag.Uint64("window", 0, "sampled measurement-window length in cycles (0 = default 8192; requires -sampled)")
		interval  = flag.Uint64("interval", 0, "sampled window period in cycles (0 = default 131072; requires -sampled)")
		warmup    = flag.String("warmup", "", "detailed warmup cycles before each sampled window, or \"auto\" to size from the fast-forward leg length (empty = default 8192; requires -sampled)")
		windowW   = flag.Int("windowworkers", 0, "checkpoint-parallel sampled simulation: worker cores running detailed windows concurrently over the functional sweep (0 = serial; output is byte-identical at any count >= 1; requires -sampled)")
		checkInv  = flag.Bool("check", false, "verify cycle-level trace invariants and profiler conservation; fail on any violation")
		replayW   = flag.Int("replayworkers", 1, "worker goroutines the captured-trace replay fans the profilers out over (decode-once broadcast; results are byte-identical at any count)")
		cpuprof   = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprof   = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		exectrace = flag.String("exectrace", "", "write a runtime execution trace (go tool trace) to this file")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer writeHeapProfile(*memprof)
	}
	if *exectrace != "" {
		f, err := os.Create(*exectrace)
		if err != nil {
			fatal(err)
		}
		if err := rtrace.Start(f); err != nil {
			fatal(err)
		}
		defer rtrace.Stop()
	}

	if *list {
		for _, name := range tip.Benchmarks() {
			class, _ := tip.BenchmarkClass(name)
			fmt.Printf("%-16s %s\n", name, class)
		}
		fmt.Printf("%-16s %s\n", "imagick-opt", "Flush (optimized §6 variant)")
		return
	}

	kinds, err := parseKinds(*profilers)
	if err != nil {
		fatal(err)
	}

	rc := tip.DefaultRunConfig()
	rc.TargetSamples = *samples
	rc.RandomSampling = *random
	rc.Profilers = kinds
	rc.WithBreakdown = true
	rc.Check = *checkInv
	rc.ReplayWorkers = *replayW
	rc.Streaming = *streaming
	rc.PilotCycles = *pilot
	if err := configureSampled(&rc, *sampled, *window, *interval, *warmup, *windowW, *record != ""); err != nil {
		fatal(err)
	}

	if *cores != "" {
		if err := runMulticore(*cores, *seed, *scale, rc, *top, *fn,
			*record != "", *streaming, *sampled); err != nil {
			fatal(err)
		}
		return
	}

	w, err := workload.LoadScaled(*bench, *seed, *scale)
	if err != nil {
		fatal(err)
	}

	var recFile *os.File
	var recWriter *perfdata.Writer
	var res *tip.Result
	if *record != "" {
		if *streaming {
			// The raw-sample collector needs the concrete interval before
			// the run starts; streaming only knows it after the pilot
			// window, so recording stays on the capture-then-replay path.
			fatal(fmt.Errorf("-record is incompatible with -streaming"))
		}
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		recFile = f
		recWriter = perfdata.NewWriter(f)
		// The collector needs the concrete interval before the profiled
		// pass starts. Capture the trace once, calibrate from the
		// measured cycle count, and replay the capture through the
		// profilers and collector — one simulation instead of two.
		capture, stats, err := tip.CaptureWorkload(w, rc.Core)
		if err != nil {
			fatal(err)
		}
		defer capture.Close()
		rc.SampleInterval = tip.CalibrateInterval(stats.Cycles, *samples)
		rc.ExtraConsumers = append(rc.ExtraConsumers,
			perfdata.NewCollector(recWriter, sampling.NewPeriodic(rc.SampleInterval), 0, 1, 1))
		res, err = tip.RunCaptured(context.Background(), w, capture, stats, rc)
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		res, err = tip.Run(w, rc)
		if err != nil {
			fatal(err)
		}
	}
	if recWriter != nil {
		if recWriter.Err() != nil {
			fatal(recWriter.Err())
		}
		if err := recFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d raw samples (%d bytes) to %s\n",
			recWriter.Count(), recWriter.Count()*perfdata.RecordBytes, *record)
	}

	printResult(w.Name, res, *top, *fn)
}

// printResult renders one run's summary, error table, and top functions.
func printResult(name string, res *tip.Result, top int, fn string) {
	fmt.Printf("benchmark %s: %d cycles, %d instructions, IPC %.2f, sample interval %d cycles\n",
		name, res.Stats.Cycles, res.Stats.Committed, res.Stats.IPC(), res.SampleInterval)
	if sr := res.Sampling; sr != nil {
		fmt.Printf("sampled: %d windows, %d measured cycles (%.1f%% detailed), %d instructions fast-forwarded; cycle total is the stitched estimate\n",
			sr.Windows, sr.MeasuredCycles, sr.DetailedFraction()*100, sr.FFInstructions)
		if sr.WindowWorkers > 0 {
			fmt.Printf("parallel: %d window workers; sweep %.2fs, detailed legs %.2fs aggregate\n",
				sr.WindowWorkers, sr.SweepSeconds, sr.MeasureSeconds)
		}
	}
	fmt.Printf("mispredicts %d, CSR flushes %d, exceptions %d\n",
		res.Stats.Mispredicts, res.Stats.CSRFlushes, res.Stats.Exceptions)
	fmt.Printf("cycle stack: %s  (class %s)\n\n", res.Stack().String(), res.Stack().Class())

	fmt.Println("profile error vs Oracle (instruction / basic-block / function):")
	for _, k := range orderOf(res) {
		fmt.Printf("  %-9s %6.2f%%  %6.2f%%  %6.2f%%\n", k.String(),
			res.Err(k, tip.GranInstruction)*100,
			res.Err(k, tip.GranBlock)*100,
			res.Err(k, tip.GranFunction)*100)
	}

	fmt.Printf("\nhottest functions (Oracle):\n")
	for _, r := range res.Oracle.Profile.TopFunctions(top, true) {
		fmt.Printf("  %-24s %6.2f%%\n", r.Name, r.Share*100)
	}

	if fn != "" {
		fmt.Printf("\ninstruction profile of %s (Oracle / TIP / NCI):\n", fn)
		or := res.Oracle.Profile.FunctionInstProfile(fn)
		tp := res.Sampled[tip.KindTIP]
		np := res.Sampled[tip.KindNCI]
		for i, r := range or {
			tv, nv := "-", "-"
			if tp != nil {
				if rows := tp.Profile.FunctionInstProfile(fn); i < len(rows) {
					tv = fmt.Sprintf("%6.2f%%", rows[i].Share*100)
				}
			}
			if np != nil {
				if rows := np.Profile.FunctionInstProfile(fn); i < len(rows) {
					nv = fmt.Sprintf("%6.2f%%", rows[i].Share*100)
				}
			}
			fmt.Printf("  %-28s %6.2f%%  %7s  %7s\n", r.Name, r.Share*100, tv, nv)
		}
	}
}

// runMulticore runs the -cores benchmark set lockstep on one shared-LLC
// system and prints each core's profile evaluation against that core's own
// Oracle.
func runMulticore(spec string, seed, scale uint64, rc tip.RunConfig, top int, fn string, recording, streaming, sampled bool) error {
	switch {
	case recording:
		return fmt.Errorf("-record is incompatible with -cores (raw-sample recording is single-core)")
	case streaming:
		return fmt.Errorf("-streaming is incompatible with -cores (multicore profiling demultiplexes a finished capture)")
	case sampled:
		return fmt.Errorf("-sampled is incompatible with -cores (fast-forward legs emit no core-tagged records)")
	}
	names := strings.Split(spec, ",")
	ws := make([]*tip.Workload, 0, len(names))
	for _, name := range names {
		w, err := workload.LoadScaled(strings.TrimSpace(name), seed, scale)
		if err != nil {
			return err
		}
		ws = append(ws, w)
	}
	res, err := tip.RunMulticore(context.Background(), ws, rc)
	if err != nil {
		return err
	}
	fmt.Printf("%d cores, %d interleaved cycles\n", len(res.Cores), res.TotalCycles)
	for i, cr := range res.Cores {
		fmt.Printf("\n--- core %d ---\n", i)
		printResult(ws[i].Name, cr, top, fn)
	}
	return nil
}

// configureSampled applies the sampled-simulation flags to rc. The geometry
// flags are meaningless without -sampled, and -record needs the concrete
// sample interval before the run starts while sampled mode calibrates from
// a pilot window — both are rejected rather than silently ignored. Zero
// geometry values take the evaluation-harness defaults; warmup accepts the
// literal "auto" to size the warmup from the fast-forward leg length.
func configureSampled(rc *tip.RunConfig, sampled bool, window, interval uint64, warmup string, workers int, recording bool) error {
	if !sampled {
		switch {
		case window != 0:
			return fmt.Errorf("-window requires -sampled")
		case interval != 0:
			return fmt.Errorf("-interval requires -sampled")
		case warmup != "":
			return fmt.Errorf("-warmup requires -sampled")
		case workers != 0:
			return fmt.Errorf("-windowworkers requires -sampled")
		}
		return nil
	}
	if recording {
		return fmt.Errorf("-record is incompatible with -sampled (raw-sample recording needs the full trace)")
	}
	if workers < 0 {
		return fmt.Errorf("-windowworkers must be >= 0, got %d", workers)
	}
	rc.Sampled = true
	rc.WindowCycles = window
	rc.WindowInterval = interval
	rc.WindowWorkers = workers
	if rc.WindowCycles == 0 {
		rc.WindowCycles = experiments.DefaultSampledWindow
	}
	if rc.WindowInterval == 0 {
		rc.WindowInterval = experiments.DefaultSampledInterval
	}
	switch warmup {
	case "auto":
		rc.WarmupAuto = true
	case "":
		if rc.WindowCycles != rc.WindowInterval {
			rc.WarmupCycles = experiments.DefaultSampledWarmup
		}
	default:
		cycles, err := strconv.ParseUint(warmup, 10, 64)
		if err != nil {
			return fmt.Errorf("-warmup must be a cycle count or \"auto\": %q", warmup)
		}
		rc.WarmupCycles = cycles
	}
	if rc.WarmupAuto {
		rc.WarmupCycles = tip.AutoWarmupCycles(rc.WindowCycles, rc.WindowInterval)
	}
	return tip.ValidateSampled(*rc)
}

func parseKinds(s string) ([]tip.Kind, error) {
	if s == "" {
		return nil, nil
	}
	byName := map[string]tip.Kind{}
	for _, k := range tip.AllKinds() {
		byName[strings.ToLower(k.String())] = k
	}
	var out []tip.Kind
	for _, part := range strings.Split(s, ",") {
		k, ok := byName[strings.ToLower(strings.TrimSpace(part))]
		if !ok {
			return nil, fmt.Errorf("unknown profiler %q (known: Software, Dispatch, LCI, NCI, NCI+ILP, TIP-ILP, TIP)", part)
		}
		out = append(out, k)
	}
	return out, nil
}

func orderOf(res *tip.Result) []tip.Kind {
	var out []tip.Kind
	for _, k := range tip.AllKinds() {
		if _, ok := res.Sampled[k]; ok {
			out = append(out, k)
		}
	}
	return out
}

func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tipsim:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "tipsim:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tipsim:", err)
	os.Exit(1)
}
