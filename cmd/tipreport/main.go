// Command tipreport post-processes a raw TIP sample file (recorded with
// `tipsim -record`) against the application binary, rebuilding the profile
// offline — the role `perf report` plays in the paper's deployment (§3.1).
//
// The "binary" is regenerated from the benchmark name and seed (workload
// generation is deterministic), which stands in for reading symbols and
// instruction types out of an ELF file.
//
// Example:
//
//	tipsim -bench imagick -record imagick.tipperf
//	tipreport -bench imagick -data imagick.tipperf -fn ceil
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/tipprof/tip/internal/perfdata"
	"github.com/tipprof/tip/internal/pprofenc"
	"github.com/tipprof/tip/internal/workload"
)

func main() {
	var (
		bench = flag.String("bench", "imagick", "benchmark the samples were recorded from")
		seed  = flag.Uint64("seed", 1, "workload seed used at record time")
		scale = flag.Uint64("scale", 0, "workload scale used at record time")
		data  = flag.String("data", "", "raw sample file (required)")
		top   = flag.Int("top", 10, "functions to print")
		fn    = flag.String("fn", "", "print the instruction profile of this function")
		insts = flag.Int("insts", 0, "print the N hottest instructions")
		pprof = flag.String("pprof", "", "also write the profile as a gzipped pprof protobuf to this file (open with `go tool pprof`)")
		core  = flag.Int("core", -1, "tag the pprof samples with this core number (\"core\" string label, like tipd's multicore export; -1 = untagged)")
	)
	flag.Parse()
	if *data == "" {
		fatal(fmt.Errorf("-data is required"))
	}

	w, err := workload.LoadScaled(*bench, *seed, *scale)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*data)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}()

	prof, cats, err := perfdata.Postprocess(perfdata.NewReader(f), w.Prog)
	if err != nil {
		fatal(err)
	}

	if *pprof != "" {
		// Same encoding the tipd daemon serves at /v1/jobs/{id}/pprof.
		// Raw TIP samples carry per-sample periods, so no single period
		// is recorded in the pprof header.
		out, err := os.Create(*pprof)
		if err != nil {
			fatal(err)
		}
		opt := pprofenc.JobOptions(*bench, *seed, *scale, "TIP", 0)
		if *core >= 0 {
			opt.Labels = []pprofenc.Label{{Key: "core", Value: fmt.Sprint(*core)}}
		}
		if err := pprofenc.Write(out, prof, opt); err != nil {
			out.Close()
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote pprof profile to %s\n", *pprof)
	}

	fmt.Printf("%s: %.0f cycles attributed across %d instructions\n",
		*bench, prof.Attributed(), w.Prog.NumInsts())
	fmt.Printf("cycle categories: %s\n\n", cats.Stack.String())

	fmt.Println("hottest functions:")
	for _, r := range prof.TopFunctions(*top, true) {
		fmt.Printf("  %-24s %6.2f%%\n", r.Name, r.Share*100)
	}

	if *insts > 0 {
		fmt.Println("\nhottest instructions:")
		type row struct {
			idx int
			v   float64
		}
		var rows []row
		for i, v := range prof.InstCycles {
			if v > 0 {
				rows = append(rows, row{i, v})
			}
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a].v > rows[b].v })
		total := prof.Attributed()
		for i, r := range rows {
			if i >= *insts {
				break
			}
			in := w.Prog.InstByIndex(r.idx)
			fmt.Printf("  %#8x %-12s %-20s %6.2f%%\n",
				in.PC, in.Name(), in.Func().Name, r.v/total*100)
		}
	}

	if *fn != "" {
		fmt.Printf("\ninstruction profile of %s:\n", *fn)
		for _, r := range prof.FunctionInstProfile(*fn) {
			fmt.Printf("  %-28s %6.2f%%\n", r.Name, r.Share*100)
		}
		st := cats.FunctionStack(*fn)
		fmt.Printf("\n%s cycle categories: %s\n", *fn, st.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tipreport:", err)
	os.Exit(1)
}
