package main

import (
	"strings"
	"testing"
)

// TestValidateSampledFlags exercises every rejection of the sampled-figure
// flags plus the accepted shapes.
func TestValidateSampledFlags(t *testing.T) {
	cases := []struct {
		name             string
		sampledSel       bool
		window, interval uint64
		warmup           string
		workers          int
		sampledjson      string
		wantErr          string
	}{
		{name: "window without figure", window: 4096, wantErr: "-window requires -figures sampled"},
		{name: "interval without figure", interval: 65536, wantErr: "-interval requires -figures sampled"},
		{name: "warmup without figure", warmup: "1024", wantErr: "-warmup requires -figures sampled"},
		{name: "workers without figure", workers: 4, wantErr: "-windowworkers requires -figures sampled"},
		{name: "sampledjson without figure", sampledjson: "out.json", wantErr: "-sampledjson requires -figures sampled"},
		{name: "window exceeds interval", sampledSel: true, window: 1 << 20, interval: 4096, wantErr: "exceeds WindowInterval"},
		{name: "warmup overflows gap", sampledSel: true, window: 4096, interval: 8192, warmup: "8192", wantErr: "exceed WindowInterval"},
		{name: "warmup not a number", sampledSel: true, warmup: "lots", wantErr: "cycle count or \"auto\""},
		{name: "negative workers", sampledSel: true, workers: -1, wantErr: "-windowworkers must be >= 0"},
		{name: "no sampled flags", wantErr: ""},
		{name: "figure with defaults", sampledSel: true, wantErr: ""},
		{name: "figure auto warmup", sampledSel: true, warmup: "auto", wantErr: ""},
		{name: "figure parallel", sampledSel: true, workers: 4, wantErr: ""},
		{name: "figure explicit", sampledSel: true, window: 2048, interval: 16384, warmup: "1024", workers: 2, sampledjson: "out.json", wantErr: ""},
	}
	for _, tc := range cases {
		err := validateSampledFlags(tc.sampledSel, tc.window, tc.interval, tc.warmup, tc.workers, tc.sampledjson)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}
