package main

import (
	"strings"
	"testing"
)

// TestValidateSampledFlags exercises every rejection of the sampled-figure
// flags plus the accepted shapes.
func TestValidateSampledFlags(t *testing.T) {
	cases := []struct {
		name                     string
		sampledSel               bool
		window, interval, warmup uint64
		sampledjson              string
		wantErr                  string
	}{
		{name: "window without figure", window: 4096, wantErr: "-window requires -figures sampled"},
		{name: "interval without figure", interval: 65536, wantErr: "-interval requires -figures sampled"},
		{name: "warmup without figure", warmup: 1024, wantErr: "-warmup requires -figures sampled"},
		{name: "sampledjson without figure", sampledjson: "out.json", wantErr: "-sampledjson requires -figures sampled"},
		{name: "window exceeds interval", sampledSel: true, window: 1 << 20, interval: 4096, wantErr: "exceeds WindowInterval"},
		{name: "warmup overflows gap", sampledSel: true, window: 4096, interval: 8192, warmup: 8192, wantErr: "exceed WindowInterval"},
		{name: "no sampled flags", wantErr: ""},
		{name: "figure with defaults", sampledSel: true, wantErr: ""},
		{name: "figure explicit", sampledSel: true, window: 2048, interval: 16384, warmup: 1024, sampledjson: "out.json", wantErr: ""},
	}
	for _, tc := range cases {
		err := validateSampledFlags(tc.sampledSel, tc.window, tc.interval, tc.warmup, tc.sampledjson)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}
