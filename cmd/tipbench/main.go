// Command tipbench regenerates every table and figure of the paper's
// evaluation and writes them as aligned-text tables.
//
// A full-scale run evaluates all 27 benchmarks with the complete profiler
// matrix (7 profilers x 5 sampling frequencies, periodic and random) in a
// single simulation pass per benchmark; on a laptop-class core this takes a
// few minutes. Use -scale to shrink the workloads for a quick look.
//
// Examples:
//
//	tipbench                        # everything, full scale
//	tipbench -scale 300000          # quick pass
//	tipbench -figures fig10,fig13   # a subset
//	tipbench -out results.txt
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	tip "github.com/tipprof/tip"
	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/experiments"
)

func tipBenchmarks() []string { return tip.Benchmarks() }

func main() {
	var (
		scale       = flag.Uint64("scale", 0, "dynamic-instruction budget per benchmark (0 = full scale)")
		samples     = flag.Uint64("samples", 0, "4 kHz-equivalent sample count (0 = default 32768)")
		seed        = flag.Uint64("seed", 1, "workload seed")
		figures     = flag.String("figures", "", "comma-separated subset: fig1,fig7,fig8,fig9,fig10,fig11a,fig11b,fig11c,fig12,fig13,table1,overhead,sampling-overhead,validation,sampled,multicore")
		benchs      = flag.String("benchmarks", "", "comma-separated benchmark subset")
		out         = flag.String("out", "", "write output to this file instead of stdout")
		checked     = flag.Bool("check", false, "verify cycle-level trace invariants and profiler conservation on every run; fail on any violation")
		parallel    = flag.Int("parallelism", 0, "total worker budget shared by benchmark evaluations and replay workers (0 = GOMAXPROCS)")
		replayW     = flag.Int("replayworkers", 1, "replay worker goroutines per benchmark, borrowed from the -parallelism budget (decode-once broadcast; results are byte-identical at any count)")
		streaming   = flag.Bool("streaming", false, "stream each simulation straight into its replay shards (fused capture+replay; peak memory bounded by the live chunk window)")
		pilot       = flag.Uint64("pilot", 0, "streaming pilot-window length in cycles (0 = default 131072)")
		cpuprof     = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprof     = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		exectrace   = flag.String("exectrace", "", "write a runtime execution trace (go tool trace) to this file")
		benchjson   = flag.String("benchjson", "", "write machine-readable suite timing (wall-clock, cycles/sec, simulations) to this JSON file")
		window      = flag.Uint64("window", 0, "sampled measurement-window cycles for -figures sampled (0 = default)")
		interval    = flag.Uint64("interval", 0, "sampled window period in cycles for -figures sampled (0 = default)")
		warmup      = flag.String("warmup", "", "detailed warmup cycles per sampled window for -figures sampled, or \"auto\" to size from the fast-forward leg length (empty = default)")
		windowW     = flag.Int("windowworkers", 0, "checkpoint-parallel sampled simulation for -figures sampled: worker cores running detailed windows concurrently (0 = serial)")
		sampledjson = flag.String("sampledjson", "", "write machine-readable sampled-vs-full comparison (CPI error, effective cycles/sec, speedup) to this JSON file; requires -figures sampled")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer writeHeapProfile(*memprof)
	}
	if *exectrace != "" {
		f, err := os.Create(*exectrace)
		if err != nil {
			fatal(err)
		}
		if err := rtrace.Start(f); err != nil {
			fatal(err)
		}
		defer rtrace.Stop()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		// A full disk surfaces on Close: report it instead of silently
		// truncating results.
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = io.MultiWriter(os.Stdout, f)
	}

	want := map[string]bool{}
	if *figures != "" {
		for _, f := range strings.Split(*figures, ",") {
			want[strings.ToLower(strings.TrimSpace(f))] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }
	// The sampled comparison is opt-in (it reruns each benchmark in full as
	// its own ground truth), so "everything" (no -figures) does not imply it.
	sampledSel := want["sampled"]
	if err := validateSampledFlags(sampledSel, *window, *interval, *warmup, *windowW, *sampledjson); err != nil {
		fatal(err)
	}

	opt := experiments.Options{
		Seed:          *seed,
		Scale:         *scale,
		TargetSamples: *samples,
		Checked:       *checked,
		Parallelism:   *parallel,
		ReplayWorkers: *replayW,
		Streaming:     *streaming,
		PilotCycles:   *pilot,
	}
	if *benchs != "" {
		opt.Benchmarks = strings.Split(*benchs, ",")
	}

	// Static experiments need no simulation.
	if sel("table1") {
		fmt.Fprintln(w, experiments.Table1())
	}
	if sel("overhead") {
		fmt.Fprintln(w, experiments.OverheadTable())
	}
	if sel("sampling-overhead") {
		t, err := experiments.SamplingOverhead(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, t)
	}

	needSuite := sel("fig1") || sel("fig7") || sel("fig8") || sel("fig9") ||
		sel("fig10") || sel("fig11a") || sel("fig11b") || sel("fig11c") || sel("validation")
	if needSuite {
		runsBefore := cpu.RunsStarted()
		var heap *peakHeapTracker
		if *benchjson != "" {
			heap = startPeakHeapTracker()
		}
		fmt.Fprintf(w, "evaluating suite (%d benchmarks)...\n", len(suiteNames(opt)))
		evals, timing, err := experiments.EvalSuiteTimed(context.Background(), opt)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "suite evaluated in %s (capture %s, replay %s across benchmarks, up to %d replay workers)\n\n",
			timing.Wall.Round(time.Second), timing.Capture.Round(time.Millisecond),
			timing.Replay.Round(time.Millisecond), timing.MaxReplayWorkers)
		if *benchjson != "" {
			if err := writeBenchJSON(*benchjson, evals, timing, cpu.RunsStarted()-runsBefore, *streaming, heap.Stop()); err != nil {
				fatal(err)
			}
		}
		if sel("fig1") {
			fmt.Fprintln(w, experiments.Fig01(evals))
		}
		if sel("fig7") {
			fmt.Fprintln(w, experiments.Fig07(evals))
		}
		if sel("fig8") {
			fmt.Fprintln(w, experiments.Fig08(evals))
		}
		if sel("fig9") {
			fmt.Fprintln(w, experiments.Fig09(evals))
		}
		if sel("fig10") {
			fmt.Fprintln(w, experiments.Fig10(evals))
		}
		if sel("fig11a") {
			fmt.Fprintln(w, experiments.Fig11a(evals, nil))
		}
		if sel("fig11b") {
			fmt.Fprintln(w, experiments.Fig11b(evals))
		}
		if sel("fig11c") {
			fmt.Fprintln(w, experiments.Fig11c(evals))
		}
		if sel("validation") {
			fmt.Fprintln(w, experiments.Validation(evals))
		}
	}

	if sampledSel {
		sopt := experiments.SampledOptions{
			Seed:           *seed,
			Scale:          *scale,
			TargetSamples:  *samples,
			WindowCycles:   *window,
			WindowInterval: *interval,
			WindowWorkers:  *windowW,
			Checked:        *checked,
			ReplayWorkers:  *replayW,
		}
		if *warmup == "auto" {
			sopt.WarmupAuto = true
		} else if *warmup != "" {
			sopt.WarmupCycles, _ = strconv.ParseUint(*warmup, 10, 64)
		}
		// Sequential on purpose: each comparison times a full run against a
		// sampled run of the same workload, and concurrent simulations would
		// distort both wall-clocks (and so the reported speedup).
		var comps []*experiments.SampledCompare
		for _, name := range suiteNames(opt) {
			c, err := experiments.CompareSampled(context.Background(), name, sopt)
			if err != nil {
				fatal(err)
			}
			comps = append(comps, c)
		}
		fmt.Fprintln(w, experiments.SampledTable(comps))
		if *sampledjson != "" {
			if err := writeSampledJSON(*sampledjson, comps); err != nil {
				fatal(err)
			}
		}
	}

	// The multicore experiment is opt-in like sampled: it simulates each
	// co-runner pair lockstep (roughly the cost of its workloads combined),
	// so "everything" does not imply it.
	if want["multicore"] {
		t, err := experiments.Multicore(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, t)
	}

	if sel("fig12") {
		t, err := experiments.Fig12(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, t)
	}
	if sel("fig13") {
		r, err := experiments.Fig13(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, r.Table)
	}
}

func suiteNames(opt experiments.Options) []string {
	if opt.Benchmarks != nil {
		return opt.Benchmarks
	}
	return allNames()
}

// validateSampledFlags rejects the sampled-mode flags when the sampled
// figure is not selected (the geometry would be silently ignored otherwise)
// and, when it is selected, validates the window geometry after default
// filling — so a bad schedule fails before any simulation starts.
func validateSampledFlags(sampledSel bool, window, interval uint64, warmup string, workers int, sampledjson string) error {
	if !sampledSel {
		switch {
		case window != 0:
			return fmt.Errorf("-window requires -figures sampled")
		case interval != 0:
			return fmt.Errorf("-interval requires -figures sampled")
		case warmup != "":
			return fmt.Errorf("-warmup requires -figures sampled")
		case workers != 0:
			return fmt.Errorf("-windowworkers requires -figures sampled")
		case sampledjson != "":
			return fmt.Errorf("-sampledjson requires -figures sampled")
		}
		return nil
	}
	if workers < 0 {
		return fmt.Errorf("-windowworkers must be >= 0, got %d", workers)
	}
	rc := tip.DefaultRunConfig()
	rc.Sampled = true
	rc.WindowCycles = window
	rc.WindowInterval = interval
	rc.WindowWorkers = workers
	if rc.WindowCycles == 0 {
		rc.WindowCycles = experiments.DefaultSampledWindow
	}
	if rc.WindowInterval == 0 {
		rc.WindowInterval = experiments.DefaultSampledInterval
	}
	switch warmup {
	case "auto":
		rc.WarmupCycles = tip.AutoWarmupCycles(rc.WindowCycles, rc.WindowInterval)
	case "":
		if rc.WindowCycles != rc.WindowInterval {
			rc.WarmupCycles = experiments.DefaultSampledWarmup
		}
	default:
		cycles, err := strconv.ParseUint(warmup, 10, 64)
		if err != nil {
			return fmt.Errorf("-warmup must be a cycle count or \"auto\": %q", warmup)
		}
		rc.WarmupCycles = cycles
	}
	return tip.ValidateSampled(rc)
}

// benchJSONSchemaVersion versions the -benchjson report layout. Bump it when
// removing or re-meaning fields; consumers must tolerate unknown fields so
// additions don't need a bump.
const benchJSONSchemaVersion = 1

// writeBenchJSON emits the machine-readable suite timing consumed by the CI
// benchmark job (BENCH_3.json): wall-clock with its capture/replay phase
// split, simulated throughput, how many cycle-level simulations the
// evaluation performed, and the suite's peak live-heap high-water mark (the
// CI memory gate compares streaming vs non-streaming peaks).
func writeBenchJSON(path string, evals []*experiments.BenchmarkEval, timing experiments.SuiteTiming, sims uint64, streaming bool, peakAlloc uint64) error {
	var totalCycles uint64
	for _, ev := range evals {
		totalCycles += ev.Cycles
	}
	report := struct {
		SchemaVersion  int     `json:"schema_version"`
		Benchmarks     int     `json:"benchmarks"`
		Simulations    uint64  `json:"simulations"`
		Streaming      bool    `json:"streaming"`
		SuiteSeconds   float64 `json:"suite_seconds"`
		CaptureSeconds float64 `json:"capture_seconds"`
		ReplaySeconds  float64 `json:"replay_seconds"`
		ReplayWorkers  int     `json:"replay_workers"`
		TotalCycles    uint64  `json:"total_cycles"`
		CyclesPerSec   float64 `json:"cycles_per_sec"`
		SimsPerBench   float64 `json:"simulations_per_benchmark"`
		PeakAllocBytes uint64  `json:"peak_alloc_bytes"`
	}{
		SchemaVersion:  benchJSONSchemaVersion,
		Benchmarks:     len(evals),
		Simulations:    sims,
		Streaming:      streaming,
		SuiteSeconds:   timing.Wall.Seconds(),
		CaptureSeconds: timing.Capture.Seconds(),
		ReplaySeconds:  timing.Replay.Seconds(),
		ReplayWorkers:  timing.MaxReplayWorkers,
		TotalCycles:    totalCycles,
		CyclesPerSec:   float64(totalCycles) / timing.Wall.Seconds(),
		PeakAllocBytes: peakAlloc,
	}
	if len(evals) > 0 {
		report.SimsPerBench = float64(sims) / float64(len(evals))
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// sampledJSONSchemaVersion versions the -sampledjson report layout, with the
// same bump policy as benchJSONSchemaVersion.
const sampledJSONSchemaVersion = 1

// writeSampledJSON emits the machine-readable sampled-vs-full comparison
// consumed by the CI sampled-accuracy gate: per benchmark, the full run's
// cycle count against the stitched estimate, the resulting CPI error, and
// the effective-throughput speedup.
func writeSampledJSON(path string, comps []*experiments.SampledCompare) error {
	type row struct {
		Name             string  `json:"name"`
		FullCycles       uint64  `json:"full_cycles"`
		EstimatedCycles  uint64  `json:"estimated_cycles"`
		CPIError         float64 `json:"cpi_error"`
		Speedup          float64 `json:"speedup"`
		FullCyclesPerSec float64 `json:"full_cycles_per_sec"`
		EffCyclesPerSec  float64 `json:"effective_cycles_per_sec"`
		Windows          uint64  `json:"windows"`
		DetailedFraction float64 `json:"detailed_fraction"`
		FFInstructions   uint64  `json:"ff_instructions"`
		WindowWorkers    int     `json:"window_workers"`
		SweepSeconds     float64 `json:"sweep_seconds"`
		MeasureSeconds   float64 `json:"measure_seconds"`
		WallSeconds      float64 `json:"wall_seconds"`
	}
	report := struct {
		SchemaVersion int   `json:"schema_version"`
		Benchmarks    []row `json:"benchmarks"`
	}{SchemaVersion: sampledJSONSchemaVersion}
	for _, c := range comps {
		report.Benchmarks = append(report.Benchmarks, row{
			Name:             c.Name,
			FullCycles:       c.FullCycles,
			EstimatedCycles:  c.EstCycles,
			CPIError:         c.CPIError,
			Speedup:          c.Speedup,
			FullCyclesPerSec: c.FullRate(),
			EffCyclesPerSec:  c.EffectiveRate(),
			Windows:          c.Windows,
			DetailedFraction: c.DetailedFraction,
			FFInstructions:   c.FFInstructions,
			WindowWorkers:    c.WindowWorkers,
			SweepSeconds:     c.SweepSeconds,
			MeasureSeconds:   c.MeasureSeconds,
			WallSeconds:      c.SampledWall.Seconds(),
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// peakHeapTracker polls the runtime's live-object heap size in the
// background and keeps the high-water mark. It measures what the streaming
// pipeline claims to bound — bytes simultaneously live — rather than
// cumulative allocation, which grows with trace length on every path.
type peakHeapTracker struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64
}

func startPeakHeapTracker() *peakHeapTracker {
	t := &peakHeapTracker{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(t.done)
		sample := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			metrics.Read(sample)
			if v := sample[0].Value.Uint64(); v > t.peak.Load() {
				t.peak.Store(v)
			}
			select {
			case <-t.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return t
}

// Stop ends the polling goroutine and returns the observed peak. The
// goroutine samples once immediately at startup, so even suites shorter
// than a polling tick report a nonzero peak.
func (t *peakHeapTracker) Stop() uint64 {
	close(t.stop)
	<-t.done
	return t.peak.Load()
}

func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tipbench:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "tipbench:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tipbench:", err)
	os.Exit(1)
}

func allNames() []string {
	return tipBenchmarks()
}
