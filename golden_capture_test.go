package tip

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/tipprof/tip/internal/workload"
)

// goldenCapturePath holds a gzipped TIPTRC2 stream captured from a pinned
// workload. The capture hot path is aggressively optimized; this test pins
// the contract that none of it may change the encoded stream — an
// optimization that moves a single byte of the capture is a bug.
const goldenCapturePath = "testdata/golden_capture_mcf.trc.gz"

// TestCaptureMatchesGolden re-captures the pinned workload and compares the
// encoded stream byte-for-byte against the committed golden capture.
// Regenerate (only when the trace format or core model deliberately
// changes) with:
//
//	TIP_GEN_GOLDEN_CAPTURE=1 go test -run TestCaptureMatchesGolden .
func TestCaptureMatchesGolden(t *testing.T) {
	w, err := workload.LoadScaled("mcf", 1, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	capt, _, err := CaptureWorkload(w, DefaultCoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer capt.Close()
	var got bytes.Buffer
	if _, err := capt.WriteTo(&got); err != nil {
		t.Fatal(err)
	}

	if os.Getenv("TIP_GEN_GOLDEN_CAPTURE") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenCapturePath), 0o755); err != nil {
			t.Fatal(err)
		}
		var gz bytes.Buffer
		zw := gzip.NewWriter(&gz)
		if _, err := zw.Write(got.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenCapturePath, gz.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %d raw bytes (%d gzipped), %d cycles, %d records",
			goldenCapturePath, got.Len(), gz.Len(), capt.Cycles(), capt.Records())
		return
	}

	f, err := os.Open(goldenCapturePath)
	if err != nil {
		t.Fatalf("missing golden capture (regenerate with TIP_GEN_GOLDEN_CAPTURE=1): %v", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		i := 0
		for i < len(want) && i < got.Len() && got.Bytes()[i] == want[i] {
			i++
		}
		t.Fatalf("capture stream diverged from golden: got %d bytes, want %d, first difference at offset %d.\n"+
			"The encoded capture must be byte-identical across optimizations; only a deliberate\n"+
			"format or core-model change may regenerate it (TIP_GEN_GOLDEN_CAPTURE=1).",
			got.Len(), len(want), i)
	}
}
