package tip

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"github.com/tipprof/tip/internal/cpu"
	"github.com/tipprof/tip/internal/program"
	"github.com/tipprof/tip/internal/trace"
	"github.com/tipprof/tip/internal/xrand"
)

// SampledRunStats describes one sampled run's schedule: how much of the
// execution was simulated in detail, how much was fast-forwarded, and what
// the stitched cycle estimate is made of. All cycle figures use the core's
// internal clock except MeasuredCycles, which is the contiguous renumbered
// clock the profilers observed.
type SampledRunStats struct {
	// Windows is the number of measurement windows run, including a
	// trailing partial window at end of program.
	Windows uint64
	// MeasuredCycles is the profiler-visible run length (the Finish
	// total): last measured commit cycle + 1 on the renumbered clock.
	MeasuredCycles uint64
	// DetailedCycles is the cycle-level simulation's run length
	// (measurement windows plus warmup prefixes), counted exactly as a
	// full run would: last detailed commit cycle + 1.
	DetailedCycles uint64
	// WarmupCyclesRun is the detailed cycles simulated but hidden from
	// the profilers as post-fast-forward warmup.
	WarmupCyclesRun uint64
	// FFInstructions is the number of instructions executed functionally
	// (no timing) between windows.
	FFInstructions uint64
	// FFRepresentedCycles is the estimated cycle cost of the
	// fast-forwarded instructions, each leg priced at its preceding
	// window's cycles-per-instruction.
	FFRepresentedCycles uint64
	// WarmupRepresentedCycles is the estimated cycle cost of the
	// instructions that committed during warmup prefixes, priced like the
	// fast-forwarded ones. Warmup is state-priming only: it restarts from
	// an empty pipeline, so its raw cycle count overstates the real cost
	// of its commits by roughly a pipeline-fill per window — charging the
	// representative price instead keeps the estimate unbiased.
	WarmupRepresentedCycles uint64
	// EstimatedCycles is the stitched full-run estimate: MeasuredCycles +
	// FFRepresentedCycles + WarmupRepresentedCycles; Result.Stats.Cycles
	// reports the same number.
	EstimatedCycles uint64

	// WindowWorkers is the worker count the checkpoint-parallel scheduler
	// ran with; 0 means the serial single-core schedule.
	WindowWorkers int
	// SweepSeconds is the functional sweep's wall-clock in the parallel
	// mode (0 on the serial path). Wall-clock fields are the only
	// non-deterministic members of this struct; identity tests zero them
	// before comparing.
	SweepSeconds float64
	// MeasureSeconds sums the detailed warmup+window simulation time
	// across window 0 and every worker leg (parallel mode; exceeds the
	// run's wall-clock when legs overlap).
	MeasureSeconds float64
}

// DetailedFraction returns the fraction of the estimated run that was
// simulated cycle-by-cycle (1 when no fast-forward happened).
func (s *SampledRunStats) DetailedFraction() float64 {
	if s.EstimatedCycles == 0 {
		return 1
	}
	return float64(s.DetailedCycles) / float64(s.EstimatedCycles)
}

// ValidateSampled checks rc's sampled-simulation window geometry. It is the
// single validation authority: RunSampled applies it, and the CLI tools call
// it before spending any simulation time.
func ValidateSampled(rc RunConfig) error {
	switch {
	case rc.WindowCycles == 0:
		return fmt.Errorf("sampled: WindowCycles must be positive")
	case rc.WindowInterval == 0:
		return fmt.Errorf("sampled: WindowInterval must be positive")
	case rc.WindowCycles > rc.WindowInterval:
		return fmt.Errorf("sampled: WindowCycles %d exceeds WindowInterval %d",
			rc.WindowCycles, rc.WindowInterval)
	case rc.WarmupCycles > rc.WindowInterval-rc.WindowCycles && rc.WindowCycles != rc.WindowInterval:
		return fmt.Errorf("sampled: WindowCycles %d + WarmupCycles %d exceed WindowInterval %d",
			rc.WindowCycles, rc.WarmupCycles, rc.WindowInterval)
	}
	return nil
}

// mulDiv returns a*b/d with a 128-bit intermediate, saturating at MaxUint64
// instead of overflowing; d must be non-zero.
func mulDiv(a, b, d uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	if hi >= d {
		return math.MaxUint64
	}
	q, _ := bits.Div64(hi, lo, d)
	return q
}

// sampledCancelMask mirrors the core's RunContext poll granularity: the
// window loop checks its context every sampledCancelMask+1 core cycles.
const sampledCancelMask = 8191

// AutoWarmupCycles is the `-warmup auto` heuristic (RunConfig.WarmupAuto):
// pick a warmup prefix proportional to the gap the fast-forward legs span, so
// long skips — which leave more stale μarch state per unit of warming — get
// proportionally more detailed state-priming, while short gaps are not eaten
// whole by warmup. The rule: 1/16 of the gap, at least 8192 cycles (the
// BENCH_6 floor below which L2-resident workloads under-warm), capped at half
// the gap so at least as much of each gap is skipped as is warmed. The
// default geometry (8K windows every 128K) resolves to 8192, the long-time
// fixed default.
func AutoWarmupCycles(windowCycles, windowInterval uint64) uint64 {
	if windowInterval <= windowCycles {
		return 0
	}
	gap := windowInterval - windowCycles
	warm := gap / 16
	if warm < 8192 {
		warm = 8192
	}
	if warm > gap/2 {
		warm = gap / 2
	}
	return warm
}

// stitcher prices unmeasured instruction spans — a fast-forward leg plus the
// warmup commits after it — by the windows that bracket them, not the
// preceding window alone: real programs trend (imagick triples its IPC as its
// compulsory-miss ramp drains), and one-sided pricing turns any trend into a
// systematic cycle over- or under-estimate. Each pending span is settled
// trapezoidally once the next window's CPI is known — the mean of the two
// bracketing windows' prices — and warmup commits are priced at the window
// they run contiguously into. A span the program ends inside is settled
// one-sidedly at termination; a window that committed nothing cedes its side
// of the bracket (falling back to CPI 1 only when neither side committed).
// Both the serial and the checkpoint-parallel schedulers stitch through this
// struct, so their estimates use identical arithmetic.
type stitcher struct {
	sr          *SampledRunStats
	pendingExec uint64
	pendingWarm uint64
	havePending bool
	prevCycles  uint64
	prevCommits uint64
}

func stitchPrice(x, cyc, com uint64) (uint64, bool) {
	if com == 0 {
		return x, false
	}
	return mulDiv(x, cyc, com), true
}

// pend records an unmeasured span (exec fast-forwarded instructions, warm
// warmup commits) bracketed on the left by a window of prevCycles/prevCommits.
func (st *stitcher) pend(exec, warm, prevCycles, prevCommits uint64) {
	st.pendingExec, st.pendingWarm = exec, warm
	st.prevCycles, st.prevCommits = prevCycles, prevCommits
	st.havePending = true
}

// settle prices the pending span against the right-bracket window (haveCur
// false at end of program, when no right bracket exists).
func (st *stitcher) settle(curCycles, curCommitted uint64, haveCur bool) {
	if !st.havePending {
		return
	}
	st.havePending = false
	prev, prevOK := stitchPrice(st.pendingExec, st.prevCycles, st.prevCommits)
	cur, curOK := stitchPrice(st.pendingExec, curCycles, curCommitted)
	curOK = curOK && haveCur
	switch {
	case prevOK && curOK:
		st.sr.FFRepresentedCycles += prev/2 + cur/2 + (prev%2+cur%2)/2
	case curOK:
		st.sr.FFRepresentedCycles += cur
	default:
		st.sr.FFRepresentedCycles += prev // prev falls back to CPI 1 itself
	}
	if w, ok := stitchPrice(st.pendingWarm, curCycles, curCommitted); ok && haveCur {
		st.sr.WarmupRepresentedCycles += w
	} else if w, ok := stitchPrice(st.pendingWarm, st.prevCycles, st.prevCommits); ok {
		st.sr.WarmupRepresentedCycles += w
	} else {
		st.sr.WarmupRepresentedCycles += st.pendingWarm
	}
	st.pendingExec, st.pendingWarm = 0, 0
}

// runSampledCore is the sampled producer: it alternates detailed
// measurement windows (emitted to consumer on a contiguous renumbered
// clock) with functional fast-forward legs sized by the preceding window's
// CPI, plus an optional discarded detailed warmup prefix after each leg.
// On success the caller must deliver Finish(sr.MeasuredCycles) itself.
func runSampledCore(ctx context.Context, core *cpu.Core, ff *program.FastForward, rc RunConfig, consumer trace.Consumer) (CoreStats, *SampledRunStats, error) {
	var rec trace.Record
	sr := &SampledRunStats{}
	coreCycle := uint64(0) // the core's own clock, warmup included
	measured := uint64(0)  // the emitted clock, contiguous from 0
	lastCommitCore := uint64(0)
	lastCommitMeasured := uint64(0)
	done := false

	// A full run never emits records past its last commit (the drained
	// machine stops the cycle loop), and two checker invariants rest on
	// that: Finish equals last commit + 1, and the Oracle attributes
	// exactly one cycle per record. A measurement window, though, can end
	// mid-stall with instructions in flight that only ever commit inside
	// the next (hidden) warmup or fast-forward leg. Hold each commit-free
	// suffix back until a later commit proves the stream continues; a
	// suffix still held at end of run is dropped, making the measured
	// stream end at its last commit exactly like a full run's.
	jitter := xrand.New(rc.SamplingSeed ^ 0x5a3c9d71)

	var held []trace.Record
	emit := func(r *trace.Record) {
		if r.CommitCount == 0 {
			held = append(held, *r)
			return
		}
		for i := range held {
			consumer.OnCycle(&held[i])
		}
		held = held[:0]
		consumer.OnCycle(r)
	}

	stepDetailed := func() (bool, error) {
		if rc.Core.MaxCycles > 0 && coreCycle >= rc.Core.MaxCycles {
			return false, fmt.Errorf("cpu: exceeded MaxCycles=%d (committed %d)",
				rc.Core.MaxCycles, core.Stats().Committed)
		}
		if coreCycle&sampledCancelMask == 0 {
			if err := ctx.Err(); err != nil {
				return false, fmt.Errorf("cpu: run aborted at cycle %d: %w", coreCycle, err)
			}
		}
		return core.Step(coreCycle, &rec), nil
	}

	// Unmeasured spans are priced trapezoidally by the windows that bracket
	// them; see stitcher.
	st := stitcher{sr: sr}

	for !done {
		// Measurement window: every cycle is emitted, renumbered onto
		// the measured clock so downstream consumers (checker included)
		// see one contiguous stream.
		winStartCore := coreCycle
		winStartCommits := core.Stats().Committed
		for n := uint64(0); n < rc.WindowCycles; n++ {
			d, err := stepDetailed()
			if err != nil {
				return core.Stats(), sr, err
			}
			rec.Cycle = measured
			emit(&rec)
			if rec.CommitCount > 0 {
				lastCommitMeasured = measured
				lastCommitCore = coreCycle
			}
			measured++
			coreCycle++
			if d {
				done = true
				break
			}
		}
		sr.Windows++
		winCycles := coreCycle - winStartCore
		winCommitted := core.Stats().Committed - winStartCommits
		st.settle(winCycles, winCommitted, true)
		if done {
			break
		}
		gap := rc.WindowInterval - rc.WindowCycles
		if gap == 0 {
			// Fraction 1: back-to-back windows degenerate to full
			// simulation; no checkpoint, no warmup, no estimate.
			continue
		}
		ffCycles := gap - rc.WarmupCycles
		// De-phase the schedule: a strictly periodic window placement
		// aliases against cycle-deterministic loops — the same failure
		// mode sampling.NextPrime guards the sample interval against —
		// repeatedly measuring the same loop phase and biasing the CPI
		// estimate by tens of percent. A deterministic ±50% jitter on
		// each leg keeps the mean detailed fraction on target while
		// spreading windows across program phases.
		ffCycles = ffCycles/2 + jitter.Uint64n(ffCycles+1)
		// The leg skips the instructions the window's IPC says fit in
		// ffCycles. A window that retired nothing (one long stall)
		// falls back to IPC 1 so the run still makes progress.
		skip := ffCycles
		if winCommitted > 0 {
			skip = mulDiv(ffCycles, winCommitted, winCycles)
		}
		if skip == 0 {
			// The window predicts nothing would execute in the gap;
			// keep simulating in detail rather than checkpointing
			// for an empty leg.
			continue
		}
		core.ArchCheckpoint(coreCycle)
		exec, ffDone := core.FastForward(ff, skip)
		sr.FFInstructions += exec
		st.pend(exec, 0, winCycles, winCommitted)
		if ffDone {
			// The program ended inside the leg; the checkpoint left
			// the pipeline empty, so there is nothing to drain.
			break
		}
		core.ResumeFrom(coreCycle)
		// Warmup prefix: simulated in detail (the core clock advances,
		// commits count) but never emitted — the profilers' next
		// observation is the window after it. Its cycles are likewise
		// excluded from the cycle estimate: the pipeline restarts empty,
		// so warmup time includes a fill ramp the uninterrupted execution
		// never paid — charging it would overestimate by roughly a
		// pipeline-fill per window. The instructions warmup commits are
		// real, though, and are settled above at the price of the window
		// they run into.
		warmStartCommits := core.Stats().Committed
		for n := uint64(0); n < rc.WarmupCycles && !done; n++ {
			d, err := stepDetailed()
			if err != nil {
				return core.Stats(), sr, err
			}
			if rec.CommitCount > 0 {
				lastCommitCore = coreCycle
			}
			coreCycle++
			sr.WarmupCyclesRun++
			done = d
		}
		st.pendingWarm = core.Stats().Committed - warmStartCommits
	}
	// A leg or warmup the program ended inside has no bracketing window on
	// the right; settle it against the left window alone.
	st.settle(0, 0, false)

	core.FinalizeStats(lastCommitCore)
	stats := core.Stats()
	sr.MeasuredCycles = lastCommitMeasured + 1
	sr.DetailedCycles = stats.Cycles
	sr.EstimatedCycles = sr.MeasuredCycles + sr.FFRepresentedCycles + sr.WarmupRepresentedCycles
	// The published stats describe the whole (estimated) execution, so a
	// sampled run drops into any report a full run feeds.
	stats.Cycles = sr.EstimatedCycles
	stats.Committed += sr.FFInstructions
	return stats, sr, nil
}

// RunSampled evaluates rc's profiler matrix under sampled simulation: one
// core alternates detailed measurement windows with functional fast-forward
// (see RunConfig.Sampled), streaming the measured windows through the same
// bounded ring and replay shards as RunStreaming. Profilers therefore
// observe a contiguous, renumbered trace covering roughly
// WindowCycles/WindowInterval of the execution; Result.Stats reports the
// stitched full-run estimate and Result.Sampling the schedule. With
// WindowCycles == WindowInterval the run is bit-identical to RunStreaming
// (and to the two-pass captured path) at every layer. A nil ctx means
// context.Background().
//
// With WindowWorkers >= 1 (and a non-zero gap) the windows are produced by
// the checkpoint-parallel scheduler instead (see runSampledParallel): a
// serial functional sweep snapshots warmed state at each window's warmup
// start and a bounded worker pool runs the detailed legs concurrently. Its
// output is byte-identical for every WindowWorkers value >= 1; it differs
// slightly from the serial schedule (WindowWorkers == 0), which sizes each
// fast-forward leg from the latest window's CPI, where the parallel sweep
// must place all checkpoints using window 0's IPC.
func RunSampled(ctx context.Context, w *Workload, rc RunConfig) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	fail := func(err error) (*Result, error) {
		return nil, fmt.Errorf("tip: %s: %w", w.Name, err)
	}
	if rc.WarmupAuto {
		rc.WarmupCycles = AutoWarmupCycles(rc.WindowCycles, rc.WindowInterval)
	}
	if err := ValidateSampled(rc); err != nil {
		return fail(err)
	}
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	if rc.TargetSamples == 0 {
		rc.TargetSamples = 4096
	}

	var pilotCycles uint64
	if rc.SampleInterval == 0 {
		pilotCycles = rc.PilotCycles
		if pilotCycles == 0 {
			pilotCycles = DefaultPilotCycles
		}
	}
	s := trace.NewStream(trace.StreamConfig{PilotCycles: pilotCycles})

	parallel := rc.WindowWorkers >= 1 && rc.WindowCycles < rc.WindowInterval
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var stats CoreStats
	var sampling *SampledRunStats
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		var st CoreStats
		var sr *SampledRunStats
		var err error
		if parallel {
			st, sr, err = runSampledParallel(runCtx, w, rc, s)
		} else {
			core := newCore(rc.Core, w)
			ff := program.NewFastForward(w.Prog)
			st, sr, err = runSampledCore(runCtx, core, ff, rc, s)
		}
		if err != nil {
			s.Fail(fmt.Errorf("%s: %w", w.Name, err))
			return
		}
		stats, sampling = st, sr
		s.Finish(sr.MeasuredCycles)
	}()
	stop := func() {
		s.Abort()
		cancelRun()
		<-prodDone
	}

	interval := rc.SampleInterval
	estCycles := uint64(0)
	if interval == 0 {
		ps, err := s.Pilot(ctx)
		if err != nil {
			stop()
			return fail(err)
		}
		estCycles = PilotEstimateCycles(ps, w.TargetDynInsts)
		if !ps.Exact {
			// The pilot extrapolates the full run, but the profilers
			// only see the measured fraction of it — shrink the
			// estimate so the interval still collects ~TargetSamples
			// from the measured stream. (Exact pilot stats already
			// are the measured total.)
			estCycles = mulDiv(estCycles, rc.WindowCycles, rc.WindowInterval)
		}
		interval = CalibrateInterval(estCycles, rc.TargetSamples)
	}
	if rc.ExtraConsumersAt != nil {
		rc.ExtraConsumers = appendConsumers(rc.ExtraConsumers, rc.ExtraConsumersAt(interval, estCycles))
	}
	m := buildMatrix(w, rc, interval)

	workers := rc.ReplayWorkers
	if workers < 1 {
		workers = 1
	}
	if _, _, err := s.ReplayShards(ctx, m.shards(workers)...); err != nil {
		stop()
		return fail(err)
	}
	<-prodDone
	if m.checker != nil {
		if err := m.checker.Err(); err != nil {
			return fail(err)
		}
	}
	return &Result{
		Workload:       w,
		Stats:          stats,
		Oracle:         m.oracle,
		Sampled:        m.byKind,
		SampleInterval: interval,
		Sampling:       sampling,
	}, nil
}
